#include "workload/runner.h"

#include <gtest/gtest.h>

#include "analysis/uniform_model.h"
#include "workload/zipfian_workload.h"

namespace lss {
namespace {

// Small but realistic geometry: 64 segments of 64 pages = 4096 physical
// pages. Runs in milliseconds yet exhibits steady-state cleaning.
StoreConfig TestConfig() {
  StoreConfig c;
  c.page_bytes = 4096;
  c.segment_bytes = 64 * 4096;
  c.num_segments = 64;
  c.clean_trigger_segments = 4;
  c.clean_batch_segments = 8;
  c.write_buffer_segments = 4;
  return c;
}

TEST(ScaleConfigTest, HitsRequestedFillFactor) {
  StoreConfig base = TestConfig();
  const StoreConfig c = ScaleConfigForFill(base, 2048, 0.5);
  EXPECT_EQ(c.num_segments, 64u);
  EXPECT_NEAR(static_cast<double>(2048) / c.PhysicalPages(), 0.5, 0.02);
}

TEST(ScaleConfigTest, EnforcesMinimumDevice) {
  const StoreConfig c = ScaleConfigForFill(TestConfig(), 10, 0.9);
  EXPECT_GE(c.num_segments, 8u);
}

TEST(RunnerTest, FailsWhenDeviceTooSmall) {
  UniformWorkload w(100000);
  RunSpec spec;
  spec.fill_factor = 0.8;
  const RunResult r = RunSynthetic(TestConfig(), Variant::kGreedy, w, spec);
  EXPECT_FALSE(r.status.ok());
}

TEST(RunnerTest, UniformGreedyApproachesAnalyticModel) {
  // Greedy is optimal under uniform updates; its measured Wamp should be
  // near the fixpoint model (Table 1). The free-pool reserve (trigger +
  // in-flight batch + open segments) is unusable slack, so the analytic
  // comparison point is the *effective* fill factor — benches at paper
  // scale make the reserve negligible, this test accounts for it instead.
  StoreConfig base = TestConfig();
  base.num_segments = 256;
  base.clean_trigger_segments = 2;
  base.clean_batch_segments = 4;
  const uint64_t user_pages = base.UserPagesForFillFactor(0.8);
  UniformWorkload w(user_pages);
  RunSpec spec;
  spec.fill_factor = 0.8;
  spec.warmup_multiplier = 6;
  spec.measure_multiplier = 10;
  const RunResult r = RunSynthetic(base, Variant::kGreedy, w, spec);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  const double reserve_segments = 2 + 4 + 2;  // trigger + batch + opens
  const double f_eff = static_cast<double>(user_pages) /
                       (static_cast<double>(base.PhysicalPages()) -
                        reserve_segments * base.PagesPerSegment());
  const double analytic = WampFromEmptiness(SolveSteadyStateEmptiness(f_eff));
  EXPECT_NEAR(r.wamp, analytic, analytic * 0.2) << "analytic=" << analytic;
  EXPECT_EQ(r.variant, "greedy");
  EXPECT_GT(r.measured_updates, 0u);
}

TEST(RunnerTest, SkewHelpsMdcBeatGreedy) {
  // The paper's core claim in miniature (Figure 3): under a skewed
  // hot-cold workload MDC-opt beats greedy.
  const StoreConfig base = TestConfig();
  const uint64_t user_pages = base.UserPagesForFillFactor(0.8);
  HotColdWorkload w(user_pages, 0.9);
  RunSpec spec;
  spec.fill_factor = 0.8;
  spec.warmup_multiplier = 8;
  spec.measure_multiplier = 10;
  const RunResult greedy = RunSynthetic(base, Variant::kGreedy, w, spec);
  const RunResult mdc = RunSynthetic(base, Variant::kMdcOpt, w, spec);
  ASSERT_TRUE(greedy.status.ok());
  ASSERT_TRUE(mdc.status.ok());
  EXPECT_LT(mdc.wamp, greedy.wamp);
}

TEST(RunnerTest, ResultsAreReproducibleAcrossRuns) {
  const StoreConfig base = TestConfig();
  const uint64_t user_pages = base.UserPagesForFillFactor(0.6);
  UniformWorkload w(user_pages);
  RunSpec spec;
  spec.fill_factor = 0.6;
  spec.warmup_multiplier = 2;
  spec.measure_multiplier = 3;
  spec.seed = 99;
  const RunResult a = RunSynthetic(base, Variant::kMdc, w, spec);
  const RunResult b = RunSynthetic(base, Variant::kMdc, w, spec);
  ASSERT_TRUE(a.status.ok());
  EXPECT_DOUBLE_EQ(a.wamp, b.wamp);
}

TEST(RunnerTest, TraceReplayMeasuresSuffixOnly) {
  // A trace whose prefix inserts pages and whose suffix rewrites one page
  // repeatedly. Measurement starts at the suffix.
  const StoreConfig base = TestConfig();
  Trace t;
  const uint64_t user_pages = base.UserPagesForFillFactor(0.5);
  for (PageId p = 0; p < user_pages; ++p) t.AppendWrite(p);
  const size_t measure_from = t.Size();
  for (int i = 0; i < 5000; ++i) t.AppendWrite(i % 64);
  const RunResult r = RunTrace(base, Variant::kGreedy, t, measure_from);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.measured_updates, 5000u);
}

TEST(RunnerTest, TraceReplayWithOracleVariant) {
  const StoreConfig base = TestConfig();
  Trace t;
  const uint64_t user_pages = base.UserPagesForFillFactor(0.5);
  for (PageId p = 0; p < user_pages; ++p) t.AppendWrite(p);
  const size_t measure_from = t.Size();
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    t.AppendWrite(rng.NextBounded(user_pages));
  }
  const RunResult r = RunTrace(base, Variant::kMdcOpt, t, measure_from);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_GT(r.wamp, 0.0);
}

TEST(RunnerTest, TraceReplayHandlesDeletes) {
  const StoreConfig base = TestConfig();
  Trace t;
  for (PageId p = 0; p < 100; ++p) t.AppendWrite(p);
  for (PageId p = 0; p < 50; ++p) t.AppendDelete(p);
  // Deleting an absent page must not abort the replay.
  t.AppendDelete(9999);
  const RunResult r = RunTrace(base, Variant::kAge, t, 0);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
}

// Every variant must survive a short skewed run at moderate fill.
class RunnerVariantTest : public ::testing::TestWithParam<Variant> {};

TEST_P(RunnerVariantTest, ShortRunSucceeds) {
  const StoreConfig base = TestConfig();
  const uint64_t user_pages = base.UserPagesForFillFactor(0.7);
  HotColdWorkload w(user_pages, 0.8);
  RunSpec spec;
  spec.fill_factor = 0.7;
  spec.warmup_multiplier = 2;
  spec.measure_multiplier = 3;
  const RunResult r = RunSynthetic(base, GetParam(), w, spec);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_GT(r.wamp, 0.0);
  EXPECT_NEAR(r.effective_fill, 0.7, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, RunnerVariantTest, ::testing::ValuesIn(AllVariants()),
    [](const ::testing::TestParamInfo<Variant>& info) {
      std::string n = VariantName(info.param);
      for (char& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

}  // namespace
}  // namespace lss
