#include "workload/runner.h"

#include <gtest/gtest.h>

#include "analysis/uniform_model.h"
#include "workload/zipfian_workload.h"

namespace lss {
namespace {

// Small but realistic geometry: 64 segments of 64 pages = 4096 physical
// pages. Runs in milliseconds yet exhibits steady-state cleaning.
StoreConfig TestConfig() {
  StoreConfig c;
  c.page_bytes = 4096;
  c.segment_bytes = 64 * 4096;
  c.num_segments = 64;
  c.clean_trigger_segments = 4;
  c.clean_batch_segments = 8;
  c.write_buffer_segments = 4;
  return c;
}

TEST(ScaleConfigTest, HitsRequestedFillFactor) {
  StoreConfig base = TestConfig();
  const StoreConfig c = ScaleConfigForFill(base, 2048, 0.5);
  EXPECT_EQ(c.num_segments, 64u);
  EXPECT_NEAR(static_cast<double>(2048) / c.PhysicalPages(), 0.5, 0.02);
}

TEST(ScaleConfigTest, EnforcesMinimumDevice) {
  const StoreConfig c = ScaleConfigForFill(TestConfig(), 10, 0.9);
  EXPECT_GE(c.num_segments, 8u);
}

TEST(RunnerTest, FailsWhenDeviceTooSmall) {
  UniformWorkload w(100000);
  RunSpec spec;
  spec.fill_factor = 0.8;
  const RunResult r = RunSynthetic(TestConfig(), Variant::kGreedy, w, spec);
  EXPECT_FALSE(r.status.ok());
}

TEST(RunnerTest, UniformGreedyApproachesAnalyticModel) {
  // Greedy is optimal under uniform updates; its measured Wamp should be
  // near the fixpoint model (Table 1). The free-pool reserve (trigger +
  // in-flight batch + open segments) is unusable slack, so the analytic
  // comparison point is the *effective* fill factor — benches at paper
  // scale make the reserve negligible, this test accounts for it instead.
  StoreConfig base = TestConfig();
  base.num_segments = 256;
  base.clean_trigger_segments = 2;
  base.clean_batch_segments = 4;
  const uint64_t user_pages = base.UserPagesForFillFactor(0.8);
  UniformWorkload w(user_pages);
  RunSpec spec;
  spec.fill_factor = 0.8;
  spec.warmup_multiplier = 6;
  spec.measure_multiplier = 10;
  const RunResult r = RunSynthetic(base, Variant::kGreedy, w, spec);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  const double reserve_segments = 2 + 4 + 2;  // trigger + batch + opens
  const double f_eff = static_cast<double>(user_pages) /
                       (static_cast<double>(base.PhysicalPages()) -
                        reserve_segments * base.PagesPerSegment());
  const double analytic = WampFromEmptiness(SolveSteadyStateEmptiness(f_eff));
  EXPECT_NEAR(r.wamp, analytic, analytic * 0.2) << "analytic=" << analytic;
  EXPECT_EQ(r.variant, "greedy");
  EXPECT_GT(r.measured_updates, 0u);
}

TEST(RunnerTest, SkewHelpsMdcBeatGreedy) {
  // The paper's core claim in miniature (Figure 3): under a skewed
  // hot-cold workload MDC-opt beats greedy.
  const StoreConfig base = TestConfig();
  const uint64_t user_pages = base.UserPagesForFillFactor(0.8);
  HotColdWorkload w(user_pages, 0.9);
  RunSpec spec;
  spec.fill_factor = 0.8;
  spec.warmup_multiplier = 8;
  spec.measure_multiplier = 10;
  const RunResult greedy = RunSynthetic(base, Variant::kGreedy, w, spec);
  const RunResult mdc = RunSynthetic(base, Variant::kMdcOpt, w, spec);
  ASSERT_TRUE(greedy.status.ok());
  ASSERT_TRUE(mdc.status.ok());
  EXPECT_LT(mdc.wamp, greedy.wamp);
}

TEST(RunnerTest, ResultsAreReproducibleAcrossRuns) {
  const StoreConfig base = TestConfig();
  const uint64_t user_pages = base.UserPagesForFillFactor(0.6);
  UniformWorkload w(user_pages);
  RunSpec spec;
  spec.fill_factor = 0.6;
  spec.warmup_multiplier = 2;
  spec.measure_multiplier = 3;
  spec.seed = 99;
  const RunResult a = RunSynthetic(base, Variant::kMdc, w, spec);
  const RunResult b = RunSynthetic(base, Variant::kMdc, w, spec);
  ASSERT_TRUE(a.status.ok());
  EXPECT_DOUBLE_EQ(a.wamp, b.wamp);
}

TEST(RunnerTest, TraceReplayMeasuresSuffixOnly) {
  // A trace whose prefix inserts pages and whose suffix rewrites one page
  // repeatedly. Measurement starts at the suffix.
  const StoreConfig base = TestConfig();
  Trace t;
  const uint64_t user_pages = base.UserPagesForFillFactor(0.5);
  for (PageId p = 0; p < user_pages; ++p) t.AppendWrite(p);
  const size_t measure_from = t.Size();
  for (int i = 0; i < 5000; ++i) t.AppendWrite(i % 64);
  const RunResult r = RunTrace(base, Variant::kGreedy, t, measure_from);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.measured_updates, 5000u);
}

TEST(RunnerTest, TraceReplayWithOracleVariant) {
  const StoreConfig base = TestConfig();
  Trace t;
  const uint64_t user_pages = base.UserPagesForFillFactor(0.5);
  for (PageId p = 0; p < user_pages; ++p) t.AppendWrite(p);
  const size_t measure_from = t.Size();
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    t.AppendWrite(rng.NextBounded(user_pages));
  }
  const RunResult r = RunTrace(base, Variant::kMdcOpt, t, measure_from);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_GT(r.wamp, 0.0);
}

TEST(RunnerTest, TraceReplayHandlesDeletes) {
  const StoreConfig base = TestConfig();
  Trace t;
  for (PageId p = 0; p < 100; ++p) t.AppendWrite(p);
  for (PageId p = 0; p < 50; ++p) t.AppendDelete(p);
  // Deleting an absent page must not abort the replay.
  t.AppendDelete(9999);
  const RunResult r = RunTrace(base, Variant::kAge, t, 0);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
}

// --- Parallel trace replay ------------------------------------------------

// A TPC-C-shaped synthetic trace: a load prefix writing every page once,
// then a skewed update/delete mix. Returns the measure boundary.
size_t BuildReplayTrace(uint64_t user_pages, Trace* t) {
  for (PageId p = 0; p < user_pages; ++p) t->AppendWrite(p);
  const size_t measure_from = t->Size();
  Rng rng(1234);
  for (int i = 0; i < 30000; ++i) {
    const PageId p = rng.NextBool(0.8)
                         ? rng.NextBounded(user_pages / 5)  // hot fifth
                         : rng.NextBounded(user_pages);
    if (rng.NextBool(0.02)) {
      t->AppendDelete(p);
    } else {
      t->AppendWrite(p);
    }
  }
  return measure_from;
}

// Serial ordering ground truth: the whole trace applied in order, on the
// caller's thread, to an equally-sharded store. Each shard's state
// depends only on the subsequence of records routed to it, so a correct
// parallel replay must reproduce this store's per-shard stats and
// per-page final state exactly.
std::unique_ptr<ShardedStore> SerialShardedReplay(const StoreConfig& base,
                                                  Variant v, const Trace& t,
                                                  size_t measure_from,
                                                  uint32_t shards) {
  StoreConfig cfg = base;
  ApplyVariantConfig(v, &cfg);
  Status st;
  auto store =
      ShardedStore::Create(cfg, shards, [v] { return MakePolicy(v); }, &st);
  EXPECT_NE(store, nullptr) << st.ToString();
  if (store == nullptr) return nullptr;
  const auto& recs = t.records();
  for (size_t i = 0; i < recs.size(); ++i) {
    if (i == measure_from) store->ResetMeasurement();
    Status s;
    if (recs[i].op == TraceRecord::Op::kWrite) {
      s = store->Write(recs[i].page, recs[i].bytes);
    } else {
      s = store->Delete(recs[i].page);
      if (s.code() == Status::Code::kNotFound) s = Status::OK();
    }
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return store;
}

TEST(RunnerTest, TraceReplayParallelSingleShardMatchesRunTrace) {
  // One shard + one queue = the exact op sequence of RunTrace; results
  // must agree bit for bit.
  const StoreConfig base = TestConfig();
  Trace t;
  const size_t measure_from =
      BuildReplayTrace(base.UserPagesForFillFactor(0.6), &t);
  const RunResult serial = RunTrace(base, Variant::kMdc, t, measure_from);
  ASSERT_TRUE(serial.status.ok()) << serial.status.ToString();
  const ParallelRunResult par =
      RunTraceParallel(base, Variant::kMdc, t, measure_from, 1);
  ASSERT_TRUE(par.result.status.ok()) << par.result.status.ToString();
  EXPECT_DOUBLE_EQ(par.result.wamp, serial.wamp);
  EXPECT_DOUBLE_EQ(par.result.mean_clean_emptiness,
                   serial.mean_clean_emptiness);
  EXPECT_EQ(par.result.measured_updates, serial.measured_updates);
  EXPECT_DOUBLE_EQ(par.result.effective_fill, serial.effective_fill);
}

TEST(RunnerTest, TraceReplayParallelPreservesPerPageOrder) {
  // The determinism-of-contents check: a 4-shard parallel replay must
  // leave every page in exactly the state a serial replay through an
  // equally-sharded store leaves it, and every shard's counters must
  // match — any intra-shard reordering would desynchronise cleaning and
  // show up in gc_pages_written / segments_cleaned / final state.
  const StoreConfig base = TestConfig();
  const uint32_t shards = 4;
  const uint64_t user_pages = base.UserPagesForFillFactor(0.6);
  Trace t;
  const size_t measure_from = BuildReplayTrace(user_pages, &t);

  auto serial =
      SerialShardedReplay(base, Variant::kGreedy, t, measure_from, shards);
  ASSERT_NE(serial, nullptr);

  StoreConfig cfg = base;
  ApplyVariantConfig(Variant::kGreedy, &cfg);
  Status st;
  auto parallel = ShardedStore::Create(
      cfg, shards, [] { return MakePolicy(Variant::kGreedy); }, &st);
  ASSERT_NE(parallel, nullptr) << st.ToString();
  ASSERT_TRUE(ReplayTraceParallel(parallel.get(), t, measure_from).ok());

  for (uint32_t s = 0; s < shards; ++s) {
    const StoreStats a = serial->shard(s).StatsSnapshot();
    const StoreStats b = parallel->shard(s).StatsSnapshot();
    EXPECT_EQ(a.user_updates, b.user_updates) << "shard " << s;
    EXPECT_EQ(a.user_pages_written, b.user_pages_written) << "shard " << s;
    EXPECT_EQ(a.gc_pages_written, b.gc_pages_written) << "shard " << s;
    EXPECT_EQ(a.segments_cleaned, b.segments_cleaned) << "shard " << s;
    EXPECT_EQ(a.deletes, b.deletes) << "shard " << s;
    EXPECT_DOUBLE_EQ(a.WriteAmplification(), b.WriteAmplification())
        << "shard " << s;
  }
  // Per-page final versions (presence + size) must agree everywhere.
  for (PageId p = 0; p < user_pages; ++p) {
    ASSERT_EQ(serial->Contains(p), parallel->Contains(p)) << "page " << p;
    ASSERT_EQ(serial->PageSize(p), parallel->PageSize(p)) << "page " << p;
  }
  EXPECT_TRUE(parallel->CheckInvariants().ok());
}

TEST(RunnerTest, TraceReplayParallelPresplitMatchesRouterPath) {
  // The pre-split fast path skips the per-record shard router but must
  // feed every shard the identical record subsequence, so replaying the
  // same trace with and without a ShardedTrace must agree bit for bit —
  // aggregate stats and per-shard Wamp alike.
  const StoreConfig base = TestConfig();
  const uint32_t shards = 4;
  Trace t;
  const size_t measure_from =
      BuildReplayTrace(base.UserPagesForFillFactor(0.6), &t);
  const ParallelRunResult routed =
      RunTraceParallel(base, Variant::kMdc, t, measure_from, shards);
  ASSERT_TRUE(routed.result.status.ok()) << routed.result.status.ToString();

  const ShardedTrace presplit = SplitTrace(t, measure_from, shards);
  ASSERT_TRUE(presplit.Valid());
  const ParallelRunResult fast = RunTraceParallel(base, Variant::kMdc, t,
                                                  measure_from, shards,
                                                  &presplit);
  ASSERT_TRUE(fast.result.status.ok()) << fast.result.status.ToString();

  EXPECT_DOUBLE_EQ(fast.result.wamp, routed.result.wamp);
  EXPECT_EQ(fast.result.measured_updates, routed.result.measured_updates);
  EXPECT_DOUBLE_EQ(fast.result.mean_clean_emptiness,
                   routed.result.mean_clean_emptiness);
  EXPECT_DOUBLE_EQ(fast.result.effective_fill, routed.result.effective_fill);
  ASSERT_EQ(fast.shard_wamp.size(), routed.shard_wamp.size());
  for (size_t s = 0; s < fast.shard_wamp.size(); ++s) {
    EXPECT_DOUBLE_EQ(fast.shard_wamp[s], routed.shard_wamp[s])
        << "shard " << s;
  }
  // A shard-count mismatch must fall back to the router, not misroute.
  const ShardedTrace wrong = SplitTrace(t, measure_from, shards / 2);
  const ParallelRunResult fallback = RunTraceParallel(
      base, Variant::kMdc, t, measure_from, shards, &wrong);
  ASSERT_TRUE(fallback.result.status.ok());
  EXPECT_DOUBLE_EQ(fallback.result.wamp, routed.result.wamp);
}

TEST(RunnerTest, TraceReplayParallelHandlesDeletesAndOracle) {
  const StoreConfig base = TestConfig();
  Trace t;
  const size_t measure_from =
      BuildReplayTrace(base.UserPagesForFillFactor(0.5), &t);
  t.AppendDelete(999999);  // absent page must not abort the replay
  const ParallelRunResult r =
      RunTraceParallel(base, Variant::kMdcOpt, t, measure_from, 4);
  ASSERT_TRUE(r.result.status.ok()) << r.result.status.ToString();
  EXPECT_EQ(r.shards, 4u);
  // The measured suffix holds 30000 mixed records, ~2% deletes; only
  // writes count as updates.
  EXPECT_GT(r.result.measured_updates, 28000u);
  EXPECT_LT(r.result.measured_updates, 30000u);
  EXPECT_GT(r.result.wamp, 0.0);
  EXPECT_EQ(r.shard_wamp.size(), 4u);
}

// Every variant must survive a short skewed run at moderate fill.
class RunnerVariantTest : public ::testing::TestWithParam<Variant> {};

TEST_P(RunnerVariantTest, ShortRunSucceeds) {
  const StoreConfig base = TestConfig();
  const uint64_t user_pages = base.UserPagesForFillFactor(0.7);
  HotColdWorkload w(user_pages, 0.8);
  RunSpec spec;
  spec.fill_factor = 0.7;
  spec.warmup_multiplier = 2;
  spec.measure_multiplier = 3;
  const RunResult r = RunSynthetic(base, GetParam(), w, spec);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_GT(r.wamp, 0.0);
  EXPECT_NEAR(r.effective_fill, 0.7, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, RunnerVariantTest, ::testing::ValuesIn(AllVariants()),
    [](const ::testing::TestParamInfo<Variant>& info) {
      std::string n = VariantName(info.param);
      for (char& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

}  // namespace
}  // namespace lss
