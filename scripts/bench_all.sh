#!/usr/bin/env bash
# Run every bench with LSS_BENCH_JSON and merge the per-bench files into
# one BENCH_RESULTS.json — the machine-readable perf snapshot tracked
# across PRs (each element is one measured cell; the "bench" field names
# the producing panel).
#
# Usage: scripts/bench_all.sh [build-dir] [out-file]
#   default: ./build and ./BENCH_RESULTS.json
#
# Knobs the benches honor (all optional, see bench/bench_common.h):
#   LSS_BENCH_SCALE=N          bigger device / longer runs
#   LSS_BENCH_SMOKE=1          tiny CI-sized runs where supported
#   LSS_BENCH_CKPT_INTERVAL=N  checkpoint interval for the benches that
#                              exercise checkpointing (io_backend sweep,
#                              fig6 trace generation)
#   LSS_BENCH_POOL=lru|clock|2q  buffer-pool eviction policy
#   LSS_BENCH_THREADS=N        fig6 trace-generation / replay workers
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_RESULTS.json}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "bench_all.sh: $BUILD_DIR/bench not found; build with benches on" >&2
  exit 2
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

parts=()
for bin in "$BUILD_DIR"/bench/*; do
  [[ -x "$bin" && -f "$bin" ]] || continue
  name="$(basename "$bin")"
  json="$TMP/$name.json"
  echo "bench_all.sh: running $name"
  if ! LSS_BENCH_JSON="$json" "$bin" > "$TMP/$name.log" 2>&1; then
    echo "bench_all.sh: $name FAILED; tail of its log:" >&2
    tail -20 "$TMP/$name.log" >&2
    exit 1
  fi
  # Benches without JSON output (or panels disabled by env) write
  # nothing; skip them rather than merging an absent file.
  [[ -s "$json" ]] && parts+=("$json")
done

# Merge: each part is a JSON array; strip the brackets and re-wrap.
{
  echo "["
  first=1
  for part in "${parts[@]}"; do
    while IFS= read -r line; do
      [[ "$line" == "[" || "$line" == "]" ]] && continue
      line="${line%,}"
      if [[ $first -eq 1 ]]; then first=0; else echo ","; fi
      printf '%s' "$line"
    done < "$part"
  done
  echo
  echo "]"
} > "$OUT"

echo "bench_all.sh: wrote $(grep -c '"bench"' "$OUT") rows to $OUT"
