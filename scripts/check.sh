#!/usr/bin/env bash
# One-shot tier-1 verify: configure, build everything (library, tests,
# benches, examples) with warnings-as-errors, then run the full test suite.
# This mirrors .github/workflows/ci.yml exactly; if this passes locally,
# CI should be green.
#
# Usage: scripts/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "check.sh: all green"
