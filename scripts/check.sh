#!/usr/bin/env bash
# One-shot tier-1 verify: configure, build everything (library, tests,
# benches, examples) with warnings-as-errors, then run the full test suite.
# This mirrors .github/workflows/ci.yml exactly; if this passes locally,
# CI should be green.
#
# Usage: scripts/check.sh [--tsan|--asan|--torture|--uring] [build-dir]
#   default:  full build + full test suite in ./build
#   --tsan:   rebuild with -fsanitize=thread in ./build-tsan (or the given
#             build dir) and run the concurrency test suites under
#             ThreadSanitizer — the data-race gate for ShardedStore, the
#             striped PageTable, the per-shard async seal pipeline
#             (AsyncSeal* cases in tests/core/sharded_store_test.cc), the
#             latch-striped buffer pool (BufferPoolParallel*, which
#             includes the latch-free CLOCK hit-path stress), the
#             latch-coupled B+-tree (BTreeParallel*: N-writer/M-reader
#             stress and delete-churn over one shared tree), the
#             multi-worker TPC-C engine (TpccParallel*) and parallel
#             trace replay (TraceReplayParallel*).
#   --asan:   rebuild with -fsanitize=address,undefined in ./build-asan
#             (or the given build dir) and run the FULL test suite — the
#             memory-safety gate for the raw-I/O backend (pwrite buffers,
#             recovery scans, O_DIRECT alignment) and everything else.
#   --torture: normal build, then the crash-recovery torture harness
#             (tests/integration/crash_recovery_test.cc) with extra
#             randomized kill points per geometry (LSS_TORTURE_ITERS,
#             default 600 here vs 200 in the tier-1 run). Every
#             geometry audits strict zero-loss — there is no tolerated
#             residual window — and the diverting geometries fail
#             unless withheld-slot reuse goes through entry re-homing
#             (withheld_slot_reuses_rehomed; a plain reuse of a slot
#             with still-needed entries cannot happen by construction
#             and any loss it would cause fails the audit).
#   --uring:  normal build, then the io_uring gate: the backend parity
#             suite (byte-identical durable state vs the file backend),
#             the uring crash-recovery torture geometry, and a bench
#             smoke through LSS_BENCH_BACKEND=uring:... asserting the
#             ring actually activated. When the kernel or seccomp
#             disallows io_uring this mode REPORTS the probe's reason
#             and exits 0 (the tests skip themselves; the smoke falls
#             back to synchronous pwrite) — availability is a property
#             of the host, not of the code under test.
set -euo pipefail

cd "$(dirname "$0")/.."

TSAN=0
ASAN=0
TORTURE=0
URING=0
if [[ "${1:-}" == "--tsan" ]]; then
  TSAN=1
  shift
elif [[ "${1:-}" == "--asan" ]]; then
  ASAN=1
  shift
elif [[ "${1:-}" == "--torture" ]]; then
  TORTURE=1
  shift
elif [[ "${1:-}" == "--uring" ]]; then
  URING=1
  shift
fi

if [[ $TSAN -eq 1 ]]; then
  BUILD_DIR="${1:-build-tsan}"
elif [[ $ASAN -eq 1 ]]; then
  BUILD_DIR="${1:-build-asan}"
elif [[ $TORTURE -eq 1 ]]; then
  # Own build dir: the bench/example-OFF cache values must not poison
  # the tier-1 ./build.
  BUILD_DIR="${1:-build-torture}"
else
  # --uring shares the tier-1 build (same flags, benches ON).
  BUILD_DIR="${1:-build}"
fi
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [[ $TSAN -eq 1 ]]; then
  # Benches and examples are irrelevant to the race check; skipping them
  # keeps the instrumented build quick.
  cmake -B "$BUILD_DIR" -S . -DLSS_TSAN=ON \
    -DLSS_BUILD_BENCHES=OFF -DLSS_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS"
  # TSAN_OPTIONS makes any reported race fail the run even if the test
  # binary would otherwise exit 0. The suppression file silences only
  # the false-positive potential-deadlock report on recycled buffer-pool
  # frame latches (rationale in scripts/tsan.supp); races stay fatal.
  # 'Parallel' already covers BTreeParallel/BufferPoolParallel/
  # TpccParallel/TraceReplayParallel; they are named anyway so the
  # gate's scope is explicit.
  TSAN_OPTIONS="halt_on_error=1 suppressions=$PWD/scripts/tsan.supp" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
      -R 'Sharded|PageTableConcurrency|Parallel|AsyncSeal|BTreeParallel|BufferPoolParallel|TpccParallel|TraceReplayParallel'
  echo "check.sh: tsan green"
  exit 0
fi

if [[ $TORTURE -eq 1 ]]; then
  cmake -B "$BUILD_DIR" -S . \
    -DLSS_BUILD_BENCHES=OFF -DLSS_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS"
  LSS_TORTURE_ITERS="${LSS_TORTURE_ITERS:-600}" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure \
      -R 'CrashRecovery'
  echo "check.sh: torture green"
  exit 0
fi

if [[ $ASAN -eq 1 ]]; then
  cmake -B "$BUILD_DIR" -S . -DLSS_ASAN=ON \
    -DLSS_BUILD_BENCHES=OFF -DLSS_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS"
  # abort_on_error turns any leak/overflow/UB report into a test failure.
  ASAN_OPTIONS="abort_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
  echo "check.sh: asan green"
  exit 0
fi

if [[ $URING -eq 1 ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$JOBS"
  # Parity suite + fallback contract + the uring torture geometry. On a
  # host without io_uring the UringParity*/TortureUringBackend cases
  # GTEST_SKIP with the probe's reason and UringBackendWorksWithOrWithout-
  # Ring pins the pwrite fallback — so this pass is green either way.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
    -R 'Uring|BackendSpec' --timeout 1800
  # Bench smoke through the ring: the checkpoint sweep with the uring
  # backend must keep its byte-exact device accounting. Ring activation
  # is a host property, so its absence is reported, not failed.
  URING_TMP="$(mktemp -d "${TMPDIR:-/tmp}/lss_uring_check_XXXXXX")"
  trap 'rm -rf "$URING_TMP"' EXIT
  LSS_BENCH_SMOKE=1 \
    LSS_BENCH_BACKEND="uring:$URING_TMP" \
    LSS_BENCH_IO_DIR="$URING_TMP" \
    LSS_BENCH_JSON="$URING_TMP/uring_smoke.json" \
    "$BUILD_DIR/bench/io_backend"
  grep -q '"bench":"io_backend_ckpt_sweep"' "$URING_TMP/uring_smoke.json"
  if grep -q '"uring_available":1' "$URING_TMP/uring_smoke.json"; then
    echo "check.sh: uring smoke ran with a live ring"
  else
    echo "check.sh: io_uring unavailable on this host; smoke used the" \
         "synchronous pwrite fallback (see the 'lss: uring backend'" \
         "stderr line above for the probe's reason)"
  fi
  echo "check.sh: uring green"
  exit 0
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Small-scale parallel TPC-C smoke: 2-worker trace generation, replay
# through RunTraceParallel over 2 shards, machine-readable output — the
# end-to-end gate for the concurrent fig6 pipeline (seconds, not
# minutes; the full bench is LSS_BENCH_SCALE/LSS_BENCH_THREADS).
if [[ -x "$BUILD_DIR/bench/fig6_tpcc" ]]; then
  LSS_BENCH_SMOKE=1 LSS_BENCH_THREADS=2 LSS_BENCH_NO_CACHE=1 \
    LSS_BENCH_JSON="$BUILD_DIR/fig6_smoke.json" \
    "$BUILD_DIR/bench/fig6_tpcc"
  grep -q '"bench":"fig6_tpcc"' "$BUILD_DIR/fig6_smoke.json"
  echo "check.sh: fig6 parallel smoke green"

  # Workers-beyond-warehouses smoke: 4 worker sessions over the fixed
  # 2 smoke warehouses — the end-to-end gate for the latch-coupled
  # engine's headline capability (the old engine clamped workers to the
  # warehouse count). The JSON must confirm the layout actually ran at
  # 4 threads / 2 warehouses and produced a non-empty measured trace.
  LSS_BENCH_SMOKE=1 LSS_BENCH_THREADS=4 LSS_BENCH_NO_CACHE=1 \
    LSS_BENCH_JSON="$BUILD_DIR/fig6_smoke_4w.json" \
    "$BUILD_DIR/bench/fig6_tpcc"
  grep -q '"bench":"fig6_tpcc"' "$BUILD_DIR/fig6_smoke_4w.json"
  grep -q '"row":"generation"' "$BUILD_DIR/fig6_smoke_4w.json"
  grep -q '"threads":4' "$BUILD_DIR/fig6_smoke_4w.json"
  grep -q '"warehouses":2' "$BUILD_DIR/fig6_smoke_4w.json"
  if grep -q '"trace_records":0[,}]' "$BUILD_DIR/fig6_smoke_4w.json"; then
    echo "check.sh: fig6 workers>warehouses smoke produced an empty trace" >&2
    exit 1
  fi
  echo "check.sh: fig6 workers>warehouses smoke green"
fi

# Buffer-pool eviction-policy smoke: runs all three policies (exact
# LRU / CLOCK / 2Q) through the hit-path, TPC-C and scan-flood panels
# and sanity-checks the JSON — the gate for the pluggable-eviction
# seam (latch-free CLOCK hits, 2Q scan resistance).
if [[ -x "$BUILD_DIR/bench/buffer_pool" ]]; then
  LSS_BENCH_SMOKE=1 \
    LSS_BENCH_JSON="$BUILD_DIR/buffer_pool_smoke.json" \
    "$BUILD_DIR/bench/buffer_pool"
  grep -q '"bench":"buffer_pool"' "$BUILD_DIR/buffer_pool_smoke.json"
  grep -q '"row":"scan_flood"' "$BUILD_DIR/buffer_pool_smoke.json"
  echo "check.sh: buffer_pool policy smoke green"
fi

# Delta-checkpoint smoke: the io_backend checkpoint sweep on a small
# device, shortest barrier interval only — the end-to-end gate for
# suffix-only open-segment persistence. The JSON must carry both a
# full-mode and a delta-mode row, and the delta row must have actually
# emitted suffix records (a silent fallback to full checkpoints would
# drop the checkpoint_delta_records field's nonzero value).
if [[ -x "$BUILD_DIR/bench/io_backend" ]]; then
  LSS_BENCH_SMOKE=1 \
    LSS_BENCH_JSON="$BUILD_DIR/io_backend_smoke.json" \
    "$BUILD_DIR/bench/io_backend"
  grep -q '"bench":"io_backend_ckpt_sweep"' "$BUILD_DIR/io_backend_smoke.json"
  grep -q '"mode":"delta"' "$BUILD_DIR/io_backend_smoke.json"
  grep -q '"ckpt_bytes_full_over_delta"' "$BUILD_DIR/io_backend_smoke.json"
  echo "check.sh: io_backend delta-checkpoint smoke green"
fi

echo "check.sh: all green"
