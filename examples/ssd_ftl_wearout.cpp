// SSD over-provisioning study: how much flash lifetime does the cleaning
// policy buy at a given over-provisioning level?
//
// An SSD's FTL is a log-structured store whose segments are erase blocks
// (paper §1.1), and write amplification is directly proportional to flash
// wear (§1.2). This example sweeps over-provisioning (slack = 1 - F) for
// three cleaning policies under a Zipfian user workload and reports the
// projected drive lifetime relative to a perfect (Wamp = 0) controller:
// lifetime fraction = 1 / (1 + Wamp).
//
//   $ ./build/examples/ssd_ftl_wearout

#include <cstdio>

#include "core/policy_factory.h"
#include "util/table_printer.h"
#include "workload/runner.h"
#include "workload/zipfian_workload.h"

int main() {
  using namespace lss;

  StoreConfig config;
  config.page_bytes = 4096;
  config.segment_bytes = 256 * 4096;  // 1 MiB erase blocks
  config.num_segments = 512;
  config.clean_trigger_segments = 4;
  config.clean_batch_segments = 16;
  config.write_buffer_segments = 8;

  TablePrinter table({"over-prov", "policy", "Wamp", "lifetime vs ideal"});
  for (double op : {0.07, 0.15, 0.28}) {  // typical consumer..enterprise
    const double fill = 1.0 - op;
    const uint64_t user_pages = config.UserPagesForFillFactor(fill);
    ZipfianWorkload workload(user_pages, 0.99);
    for (Variant v :
         {Variant::kGreedy, Variant::kCostBenefit, Variant::kMdc}) {
      RunSpec spec;
      spec.fill_factor = fill;
      spec.warmup_multiplier = 6;
      spec.measure_multiplier = 8;
      const RunResult r = RunSynthetic(config, v, workload, spec);
      if (!r.status.ok()) {
        std::fprintf(stderr, "%s at %.0f%% failed: %s\n",
                     VariantName(v).c_str(), op * 100,
                     r.status.ToString().c_str());
        continue;
      }
      char op_label[16];
      std::snprintf(op_label, sizeof(op_label), "%.0f%%", op * 100);
      char life[16];
      std::snprintf(life, sizeof(life), "%.0f%%", 100.0 / (1.0 + r.wamp));
      table.AddRow({TablePrinter::Cell(op_label),
                    TablePrinter::Cell(VariantName(v)),
                    TablePrinter::Cell(r.wamp, 3), TablePrinter::Cell(life)});
    }
  }
  std::printf("SSD wear-out projection under an 80-20 Zipfian workload\n");
  std::printf("(lifetime = fraction of rated erase cycles left for user "
              "data; higher is better)\n\n");
  table.Print(stdout);
  std::printf("\nReading: at every over-provisioning level MDC extends "
              "drive lifetime; the\ngain is largest when slack is scarce, "
              "which is exactly where flash cost\npressure pushes real "
              "drives.\n");
  return 0;
}
