// Quickstart: create a log-structured store with the MDC cleaning policy,
// write some pages, and read the write-amplification counters.
//
//   $ ./build/examples/quickstart
//
// This walks through the core public API: StoreConfig, MakePolicy /
// Variant, LogStructuredStore::Write/Delete/Flush, and StoreStats.

#include <cstdio>

#include "core/policy_factory.h"
#include "core/store.h"
#include "util/rng.h"

int main() {
  using namespace lss;

  // A small device: 256 segments of 128 x 4 KB pages (128 MiB).
  StoreConfig config;
  config.page_bytes = 4096;
  config.segment_bytes = 128 * 4096;
  config.num_segments = 256;
  config.clean_trigger_segments = 4;   // clean when < 4 free segments
  config.clean_batch_segments = 16;    // victims per cleaning cycle
  config.write_buffer_segments = 8;    // sort window for user writes

  // The paper's contribution: Minimum Declining Cost cleaning. Other
  // choices: kAge, kGreedy, kCostBenefit, kMultiLog, ... (see
  // core/policy_factory.h). ApplyVariantConfig sets the placement
  // conventions each algorithm expects.
  const Variant variant = Variant::kMdc;
  ApplyVariantConfig(variant, &config);

  Status status;
  auto store = LogStructuredStore::Create(config, MakePolicy(variant), &status);
  if (store == nullptr) {
    std::fprintf(stderr, "create failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Fill 70% of the device with pages 0..N-1, then update them at random:
  // a 90:10 hot/cold split (90% of updates hit the first 10% of pages).
  const uint64_t user_pages = config.UserPagesForFillFactor(0.7);
  for (PageId p = 0; p < user_pages; ++p) {
    if (Status s = store->Write(p); !s.ok()) {
      std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  Rng rng(42);
  const uint64_t hot = user_pages / 10;
  for (uint64_t i = 0; i < 10 * user_pages; ++i) {
    const PageId p = rng.NextBool(0.9) ? rng.NextBounded(hot)
                                       : hot + rng.NextBounded(user_pages - hot);
    if (Status s = store->Write(p); !s.ok()) {
      std::fprintf(stderr, "update failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  store->Flush().ok();

  const StoreStats& stats = store->stats();
  std::printf("policy               : %s\n", store->policy().name().c_str());
  std::printf("user updates         : %llu\n",
              static_cast<unsigned long long>(stats.user_updates));
  std::printf("user pages written   : %llu\n",
              static_cast<unsigned long long>(stats.user_pages_written));
  std::printf("GC page moves        : %llu\n",
              static_cast<unsigned long long>(stats.gc_pages_written));
  std::printf("cleaning cycles      : %llu\n",
              static_cast<unsigned long long>(stats.cleanings));
  std::printf("write amplification  : %.3f\n", stats.WriteAmplification());
  std::printf("mean E when cleaned  : %.3f\n", stats.MeanCleanEmptiness());
  std::printf("fill factor          : %.3f\n", store->CurrentFillFactor());
  return 0;
}
