// Quickstart: create a log-structured store with the MDC cleaning policy,
// write some pages, and read the write-amplification counters — then do
// it again on the real file backend and survive a "restart".
//
//   $ ./build/examples/quickstart
//
// Part 1 walks the core public API on the paper's bookkeeping-only
// simulator: StoreConfig, MakePolicy / Variant,
// LogStructuredStore::Write/Delete/Flush, and StoreStats.
//
// Part 2 selects the file backend (ApplyBackendSpec), runs the same
// workload with every sealed segment physically written to a temp
// directory, closes the store, reopens it with LogStructuredStore::Open
// — recovering the page table from the segment files — and verifies
// every live page is still there and readable.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "core/io_backend.h"
#include "core/policy_factory.h"
#include "core/store.h"
#include "util/rng.h"

namespace {

using namespace lss;

// A small device: 256 segments of 128 x 4 KB pages (128 MiB).
StoreConfig BaseConfig() {
  StoreConfig config;
  config.page_bytes = 4096;
  config.segment_bytes = 128 * 4096;
  config.num_segments = 256;
  config.clean_trigger_segments = 4;   // clean when < 4 free segments
  config.clean_batch_segments = 16;    // victims per cleaning cycle
  config.write_buffer_segments = 8;    // sort window for user writes
  return config;
}

// Fill fraction `f` of the device with pages 0..N-1, then update them at
// random: a 90:10 hot/cold split (90% of updates hit the first 10% of
// pages). Returns the page count, or 0 on failure.
uint64_t RunWorkload(LogStructuredStore* store, double f) {
  const uint64_t user_pages = store->config().UserPagesForFillFactor(f);
  for (PageId p = 0; p < user_pages; ++p) {
    if (Status s = store->Write(p); !s.ok()) {
      std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
      return 0;
    }
  }
  Rng rng(42);
  const uint64_t hot = user_pages / 10;
  for (uint64_t i = 0; i < 10 * user_pages; ++i) {
    const PageId p = rng.NextBool(0.9) ? rng.NextBounded(hot)
                                       : hot + rng.NextBounded(user_pages - hot);
    if (Status s = store->Write(p); !s.ok()) {
      std::fprintf(stderr, "update failed: %s\n", s.ToString().c_str());
      return 0;
    }
  }
  return user_pages;
}

void PrintStats(const LogStructuredStore& store) {
  const StoreStats& stats = store.stats();
  std::printf("policy               : %s\n", store.policy().name().c_str());
  std::printf("backend              : %s\n",
              BackendSpecName(store.config()).c_str());
  std::printf("user updates         : %llu\n",
              static_cast<unsigned long long>(stats.user_updates));
  std::printf("user pages written   : %llu\n",
              static_cast<unsigned long long>(stats.user_pages_written));
  std::printf("GC page moves        : %llu\n",
              static_cast<unsigned long long>(stats.gc_pages_written));
  std::printf("cleaning cycles      : %llu\n",
              static_cast<unsigned long long>(stats.cleanings));
  std::printf("write amplification  : %.3f\n", stats.WriteAmplification());
  std::printf("mean E when cleaned  : %.3f\n", stats.MeanCleanEmptiness());
  std::printf("fill factor          : %.3f\n", store.CurrentFillFactor());
  if (stats.device_bytes_written > 0) {
    std::printf("device bytes written : %.1f MiB (%.3f per user byte)\n",
                static_cast<double>(stats.device_bytes_written) / (1u << 20),
                stats.DeviceBytesPerUserByte());
    std::printf("device time          : %.3f s (%llu fsyncs)\n",
                stats.DeviceSeconds(),
                static_cast<unsigned long long>(stats.device_fsyncs));
  }
}

int Part1Simulator() {
  std::printf("=== Part 1: bookkeeping-only simulator (null backend) ===\n");
  StoreConfig config = BaseConfig();

  // The paper's contribution: Minimum Declining Cost cleaning. Other
  // choices: kAge, kGreedy, kCostBenefit, kMultiLog, ... (see
  // core/policy_factory.h). ApplyVariantConfig sets the placement
  // conventions each algorithm expects.
  const Variant variant = Variant::kMdc;
  ApplyVariantConfig(variant, &config);

  Status status;
  auto store = LogStructuredStore::Create(config, MakePolicy(variant), &status);
  if (store == nullptr) {
    std::fprintf(stderr, "create failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (RunWorkload(store.get(), 0.7) == 0) return 1;
  store->Flush().ok();
  PrintStats(*store);
  return 0;
}

int Part2FileBackendAndReopen() {
  std::printf("\n=== Part 2: file backend, close, reopen ===\n");
#ifdef _WIN32
  std::printf("(file backend is POSIX-only; skipping)\n");
  return 0;
#else
  // A scratch directory for the segment files.
  const char* tmp_base = std::getenv("TMPDIR");
  std::string dir_template =
      std::string(tmp_base != nullptr ? tmp_base : "/tmp") +
      "/lss_quickstart_XXXXXX";
  std::vector<char> dir_buf(dir_template.begin(), dir_template.end());
  dir_buf.push_back('\0');
  const char* dir = ::mkdtemp(dir_buf.data());
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  StoreConfig config = BaseConfig();
  const Variant variant = Variant::kMdc;
  ApplyVariantConfig(variant, &config);

  // Backend selection is one string: "file:DIR" (fsync every seal),
  // "file-nosync:DIR" (page-cache speed) or "file-direct:DIR" (O_DIRECT).
  if (Status s = ApplyBackendSpec("file-nosync:" + std::string(dir), &config);
      !s.ok()) {
    std::fprintf(stderr, "backend spec: %s\n", s.ToString().c_str());
    return 1;
  }

  uint64_t user_pages = 0;
  {
    Status status;
    auto store =
        LogStructuredStore::Create(config, MakePolicy(variant), &status);
    if (store == nullptr) {
      std::fprintf(stderr, "create failed: %s\n", status.ToString().c_str());
      return 1;
    }
    user_pages = RunWorkload(store.get(), 0.7);
    if (user_pages == 0) return 1;
    PrintStats(*store);

    // Close = flush + seal + fsync: after this, the directory holds the
    // complete store and the process could exit (or crash).
    if (Status s = store->Close(); !s.ok()) {
      std::fprintf(stderr, "close failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("store closed; segment files live in %s\n", dir);
  }

  // "Restart": reopen from the segment files alone. The recovery scan
  // rebuilds the page table, segment bookkeeping and clocks.
  Status status;
  auto store = LogStructuredStore::Open(config, MakePolicy(variant), &status);
  if (store == nullptr) {
    std::fprintf(stderr, "reopen failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (Status s = store->CheckInvariants(); !s.ok()) {
    std::fprintf(stderr, "invariants after reopen: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  uint64_t readable = 0;
  std::vector<uint8_t> payload;
  for (PageId p = 0; p < user_pages; ++p) {
    if (!store->Contains(p)) {
      std::fprintf(stderr, "page %llu lost across reopen\n",
                   static_cast<unsigned long long>(p));
      return 1;
    }
    if (store->ReadPage(p, &payload).ok()) ++readable;
  }
  std::printf("reopened: %llu/%llu live pages present, %llu readable\n",
              static_cast<unsigned long long>(store->LivePageCount()),
              static_cast<unsigned long long>(user_pages),
              static_cast<unsigned long long>(readable));

  // The store is fully writable again — updates, cleaning and all.
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    if (Status s = store->Write(rng.NextBounded(user_pages)); !s.ok()) {
      std::fprintf(stderr, "post-reopen write failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }
  std::printf("20000 post-reopen updates OK (Wamp %.3f)\n",
              store->stats().WriteAmplification());

  store->Close().ok();
  ::unlink(FileBackend::DataPath(dir, 0).c_str());
  ::unlink(FileBackend::MetaPath(dir, 0).c_str());
  ::rmdir(dir);
  return 0;
#endif
}

}  // namespace

int main() {
  if (int rc = Part1Simulator(); rc != 0) return rc;
  return Part2FileBackendAndReopen();
}
