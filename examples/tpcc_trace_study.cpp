// End-to-end database study: run TPC-C on the bundled B+-tree storage
// engine, collect its page-write I/O trace, and replay the trace through
// the log-structured store under different cleaning policies — the full
// pipeline behind the paper's Figure 6 at example scale.
//
//   $ ./build/examples/tpcc_trace_study
//
// Also demonstrates the Trace save/load API: the generated trace is
// written to a temp file and reloaded before replay, the way a real
// experiment would snapshot traces.

#include <cstdio>
#include <string>

#include "core/policy_factory.h"
#include "tpcc/trace_gen.h"
#include "util/table_printer.h"
#include "workload/runner.h"

int main() {
  using namespace lss;

  // A ~1-warehouse TPC-C database with a cache around 10% of the data.
  tpcc::TpccConfig tc;
  tc.warehouses = 2;
  tc.districts_per_warehouse = 10;
  tc.customers_per_district = 300;
  tc.items = 2000;
  tc.orders_per_district = 300;
  tc.buffer_pool_pages = 512;
  tc.seed = 5;

  std::printf("generating TPC-C trace (2 warehouses, 20k txns)...\n");
  const tpcc::TpccTraceResult gen =
      tpcc::GenerateTpccTrace(tc, /*warm_txns=*/5000, /*measure_txns=*/15000,
                              /*checkpoint_every=*/1000);
  std::printf("  %zu page writes, database %llu -> %llu pages\n",
              gen.trace.Size(),
              static_cast<unsigned long long>(gen.pages_after_load),
              static_cast<unsigned long long>(gen.pages_final));

  const std::string path = "/tmp/lss_tpcc_example.trace";
  if (!gen.trace.SaveTo(path)) {
    std::fprintf(stderr, "failed to save trace\n");
    return 1;
  }
  Trace trace;
  if (!trace.LoadFrom(path)) {
    std::fprintf(stderr, "failed to reload trace\n");
    return 1;
  }
  std::remove(path.c_str());

  // Replay at fill factor 0.7: size the device so the final database
  // occupies 70% of it.
  StoreConfig base;
  base.page_bytes = 4096;
  base.segment_bytes = 128 * 4096;
  base.clean_trigger_segments = 4;
  base.clean_batch_segments = 16;
  base.write_buffer_segments = 8;
  const StoreConfig cfg = ScaleConfigForFill(base, gen.pages_final, 0.7);

  TablePrinter table({"policy", "Wamp", "E(clean)"});
  for (Variant v : {Variant::kAge, Variant::kGreedy, Variant::kCostBenefit,
                    Variant::kMultiLog, Variant::kMdc, Variant::kMdcOpt}) {
    const RunResult r = RunTrace(cfg, v, trace, gen.measure_from);
    if (!r.status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", VariantName(v).c_str(),
                   r.status.ToString().c_str());
      continue;
    }
    table.AddRow({TablePrinter::Cell(r.variant),
                  TablePrinter::Cell(r.wamp, 3),
                  TablePrinter::Cell(r.mean_clean_emptiness, 3)});
  }
  std::printf("\nreplay at fill factor 0.7 (device %u segments):\n\n",
              cfg.num_segments);
  table.Print(stdout);
  return 0;
}
