// Policy explorer: a small command-line tool to compare cleaning policies
// on a chosen synthetic workload and fill factor.
//
//   $ ./build/examples/policy_explorer [fill] [workload] [skew]
//
//     fill      fill factor in (0,1), default 0.8
//     workload  uniform | hotcold | zipf     (default zipf)
//     skew      hotcold: m in [0.5,1); zipf: theta > 0   (default 0.99)
//
// Example: ./build/examples/policy_explorer 0.9 hotcold 0.8

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/policy_factory.h"
#include "util/table_printer.h"
#include "workload/runner.h"
#include "workload/zipfian_workload.h"

int main(int argc, char** argv) {
  using namespace lss;

  double fill = 0.8;
  const char* kind = "zipf";
  double skew = 0.99;
  if (argc > 1) fill = std::atof(argv[1]);
  if (argc > 2) kind = argv[2];
  if (argc > 3) skew = std::atof(argv[3]);
  if (fill <= 0.05 || fill >= 0.99) {
    std::fprintf(stderr, "fill factor must be in (0.05, 0.99)\n");
    return 1;
  }

  StoreConfig config;
  config.page_bytes = 4096;
  config.segment_bytes = 128 * 4096;
  config.num_segments = 512;
  config.clean_trigger_segments = 4;
  config.clean_batch_segments = 16;
  config.write_buffer_segments = 16;

  const uint64_t user_pages = config.UserPagesForFillFactor(fill);
  std::unique_ptr<WorkloadGenerator> workload;
  if (std::strcmp(kind, "uniform") == 0) {
    workload = std::make_unique<UniformWorkload>(user_pages);
  } else if (std::strcmp(kind, "hotcold") == 0) {
    workload = std::make_unique<HotColdWorkload>(user_pages, skew);
  } else if (std::strcmp(kind, "zipf") == 0) {
    workload = std::make_unique<ZipfianWorkload>(user_pages, skew);
  } else {
    std::fprintf(stderr, "unknown workload '%s'\n", kind);
    return 1;
  }

  std::printf("workload %s, fill factor %.2f, %llu user pages\n\n",
              workload->name().c_str(), fill,
              static_cast<unsigned long long>(user_pages));

  TablePrinter table({"policy", "Wamp", "E(clean)", "vs MDC"});
  double mdc_wamp = 0.0;
  std::vector<std::pair<std::string, RunResult>> results;
  for (Variant v : AllVariants()) {
    if (v == Variant::kMdcNoSepUser || v == Variant::kMdcNoSepUserGc) {
      continue;
    }
    RunSpec spec;
    spec.fill_factor = fill;
    spec.warmup_multiplier = 6;
    spec.measure_multiplier = 8;
    const RunResult r = RunSynthetic(config, v, *workload, spec);
    if (!r.status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", VariantName(v).c_str(),
                   r.status.ToString().c_str());
      continue;
    }
    if (v == Variant::kMdc) mdc_wamp = r.wamp;
    results.emplace_back(VariantName(v), r);
  }
  for (const auto& [name, r] : results) {
    char rel[16];
    if (mdc_wamp > 0) {
      std::snprintf(rel, sizeof(rel), "%+.0f%%",
                    (r.wamp / mdc_wamp - 1.0) * 100.0);
    } else {
      std::snprintf(rel, sizeof(rel), "-");
    }
    table.AddRow({TablePrinter::Cell(name), TablePrinter::Cell(r.wamp, 3),
                  TablePrinter::Cell(r.mean_clean_emptiness, 3),
                  TablePrinter::Cell(rel)});
  }
  table.Print(stdout);
  return 0;
}
